package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMeanVariance(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); m != 5 {
		t.Fatalf("mean %v", m)
	}
	if v := Variance(xs); !approx(v, 32.0/7.0, 1e-12) {
		t.Fatalf("variance %v", v)
	}
	if Mean(nil) != 0 || Variance([]float64{1}) != 0 {
		t.Fatal("degenerate cases")
	}
}

func TestRegIncBetaKnownValues(t *testing.T) {
	// I_x(a,b) reference values.
	cases := []struct{ a, b, x, want float64 }{
		{1, 1, 0.5, 0.5},     // uniform CDF
		{2, 2, 0.5, 0.5},     // symmetric
		{0.5, 0.5, 0.5, 0.5}, // arcsine distribution median
		{2, 3, 0.3, 0.3483},  // reference
		{5, 5, 0.7, 0.9012},  // reference
		{1, 2, 0.25, 0.4375}, // 1-(1-x)^2
		{3, 1, 0.9, 0.729},   // x^3
	}
	for _, c := range cases {
		got := RegIncBeta(c.a, c.b, c.x)
		if !approx(got, c.want, 2e-4) {
			t.Errorf("I_%.2f(%v,%v) = %v, want %v", c.x, c.a, c.b, got, c.want)
		}
	}
	if RegIncBeta(2, 2, 0) != 0 || RegIncBeta(2, 2, 1) != 1 {
		t.Error("boundary values")
	}
}

func TestStudentTKnownValues(t *testing.T) {
	// Two-sided p-values cross-checked against R: 2*pt(-|t|, df).
	cases := []struct{ tstat, df, want float64 }{
		{0, 10, 1.0},
		{2.228, 10, 0.05},  // t_{0.975,10}
		{1.96, 1e6, 0.05},  // normal limit
		{2.576, 1e6, 0.01}, // normal limit
		{3.169, 10, 0.01},  // t_{0.995,10}
		{1.0, 5, 0.3632},   // R: 2*pt(-1,5)
	}
	for _, c := range cases {
		got := StudentTTwoSidedP(c.tstat, c.df)
		if !approx(got, c.want, 3e-3) {
			t.Errorf("p(t=%v, df=%v) = %v, want %v", c.tstat, c.df, got, c.want)
		}
	}
}

func TestWelchIdenticalSamplesNotSignificant(t *testing.T) {
	a := []float64{5, 6, 7, 5, 6, 7, 5, 6, 7, 6}
	b := []float64{6, 5, 7, 6, 5, 7, 6, 5, 7, 6}
	r, err := Welch(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if r.P < 0.5 {
		t.Fatalf("near-identical samples p=%v, want large", r.P)
	}
	if Significant(a, b, 0.01) {
		t.Fatal("should not be significant")
	}
}

func TestWelchClearlyDifferent(t *testing.T) {
	a := []float64{10, 11, 9, 10, 10.5, 9.5, 10, 10, 11, 9}
	b := []float64{20, 21, 19, 20, 20.5, 19.5, 20, 20, 21, 19}
	r, err := Welch(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if r.P > 1e-6 {
		t.Fatalf("clearly different samples p=%v, want tiny", r.P)
	}
	if !Significant(a, b, 0.01) {
		t.Fatal("should be significant")
	}
}

func TestWelchKnownExample(t *testing.T) {
	// Classic Welch example (unequal variances).
	a := []float64{27.5, 21.0, 19.0, 23.6, 17.0, 17.9, 16.9, 20.1, 21.9, 22.6, 23.1, 19.6, 19.0, 21.7, 21.4}
	b := []float64{27.1, 22.0, 20.8, 23.4, 23.4, 23.5, 25.8, 22.0, 24.8, 20.2, 21.9, 22.1, 22.9, 30.5, 31.2}
	r, err := Welch(a, b)
	if err != nil {
		t.Fatal(err)
	}
	// Cross-checked with an independent implementation of Welch's
	// formulas: t = -2.95132, df = 27.35012; p from the t CDF ~ 0.0064.
	if !approx(r.T, -2.95132, 1e-4) {
		t.Errorf("t = %v, want ~-2.95132", r.T)
	}
	if !approx(r.DF, 27.35012, 1e-3) {
		t.Errorf("df = %v, want ~27.35012", r.DF)
	}
	if !approx(r.P, 0.00642, 3e-4) {
		t.Errorf("p = %v, want ~0.00642", r.P)
	}
}

// TestWelchDegenerateInputs: every degenerate input class returns its
// typed error instead of propagating NaN/±Inf into significance tables.
func TestWelchDegenerateInputs(t *testing.T) {
	inf := math.Inf(1)
	nan := math.NaN()
	cases := []struct {
		name    string
		a, b    []float64
		wantErr error
	}{
		{"empty vs empty", nil, nil, ErrTooFewSamples},
		{"single vs pair", []float64{1}, []float64{1, 2}, ErrTooFewSamples},
		{"pair vs single", []float64{1, 2}, []float64{1}, ErrTooFewSamples},
		{"empty vs pair", []float64{}, []float64{1, 2}, ErrTooFewSamples},
		{"identical constants", []float64{5, 5, 5}, []float64{5, 5, 5}, ErrZeroVariance},
		{"differing constants", []float64{5, 5, 5}, []float64{6, 6, 6}, ErrZeroVariance},
		{"NaN in a", []float64{1, nan, 3}, []float64{1, 2, 3}, ErrNonFinite},
		{"NaN in b", []float64{1, 2, 3}, []float64{nan, 2, 3}, ErrNonFinite},
		{"+Inf in a", []float64{1, inf, 3}, []float64{1, 2, 3}, ErrNonFinite},
		{"-Inf in b", []float64{1, 2, 3}, []float64{1, -inf, 3}, ErrNonFinite},
		{"one constant sample ok", []float64{5, 5, 5}, []float64{4, 6, 5}, nil},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			r, err := Welch(c.a, c.b)
			if c.wantErr != nil {
				if err != c.wantErr {
					t.Fatalf("Welch(%v, %v) err = %v, want %v", c.a, c.b, err, c.wantErr)
				}
				return
			}
			if err != nil {
				t.Fatalf("Welch(%v, %v) unexpected error %v", c.a, c.b, err)
			}
			if math.IsNaN(r.T) || math.IsInf(r.T, 0) || math.IsNaN(r.P) {
				t.Fatalf("non-finite result %+v for finite input", r)
			}
		})
	}
}

// TestSignificantDegenerateInputs: degenerate samples are never
// significant — the failure mode this guards against is a zero-variance
// cell rendering as a confident heatmap entry.
func TestSignificantDegenerateInputs(t *testing.T) {
	if Significant([]float64{1}, []float64{2}, 0.01) {
		t.Fatal("insufficient samples can't be significant")
	}
	if Significant([]float64{5, 5, 5}, []float64{6, 6, 6}, 0.01) {
		t.Fatal("zero-variance samples can't be significant")
	}
	if Significant([]float64{1, 2, math.NaN()}, []float64{5, 6, 7}, 0.01) {
		t.Fatal("non-finite samples can't be significant")
	}
}

// Property: under the null hypothesis (same distribution), the p-value
// should rarely be tiny; under a large shift it should almost always be
// tiny.
func TestPropertyWelchCalibration(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	falsePos := 0
	const trials = 200
	for i := 0; i < trials; i++ {
		a := make([]float64, 12)
		b := make([]float64, 12)
		for j := range a {
			a[j] = r.NormFloat64()
			b[j] = r.NormFloat64()
		}
		if Significant(a, b, 0.01) {
			falsePos++
		}
	}
	// Expect ~1% false positives; allow up to 6%.
	if falsePos > trials*6/100 {
		t.Fatalf("false positive rate %d/%d too high", falsePos, trials)
	}
	missed := 0
	for i := 0; i < trials; i++ {
		a := make([]float64, 12)
		b := make([]float64, 12)
		for j := range a {
			a[j] = r.NormFloat64()
			b[j] = r.NormFloat64() + 5
		}
		if !Significant(a, b, 0.01) {
			missed++
		}
	}
	if missed > 0 {
		t.Fatalf("missed %d/%d obvious shifts", missed, trials)
	}
}

// Property: p-values are monotone decreasing in |t|.
func TestPropertyPMonotone(t *testing.T) {
	f := func(t1, t2 float64, dfRaw uint8) bool {
		df := float64(dfRaw%50) + 2
		a, b := math.Abs(t1), math.Abs(t2)
		if math.IsNaN(a) || math.IsNaN(b) || a > 100 || b > 100 {
			return true
		}
		if a > b {
			a, b = b, a
		}
		return StudentTTwoSidedP(a, df) >= StudentTTwoSidedP(b, df)-1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestPercentDiff(t *testing.T) {
	// QUIC faster (smaller PLT) => positive.
	if d := PercentDiff(200, 100); d != 50 {
		t.Fatalf("PercentDiff(200,100) = %v", d)
	}
	if d := PercentDiff(100, 200); d != -100 {
		t.Fatalf("PercentDiff(100,200) = %v", d)
	}
	if PercentDiff(0, 5) != 0 {
		t.Fatal("zero base")
	}
}
