// Package stats implements the statistical machinery the paper's
// methodology requires: summary statistics and Welch's t-test (the
// two-sample location test with unequal variances the paper uses to
// decide whether a QUIC-vs-TCP difference is significant at p < 0.01,
// rendering inconclusive cells white in the heatmaps).
package stats

import (
	"errors"
	"math"
)

// Mean returns the arithmetic mean (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the unbiased sample variance (0 for n < 2).
func Variance(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(n-1)
}

// StdDev returns the sample standard deviation.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// WelchResult is the outcome of Welch's t-test.
type WelchResult struct {
	T  float64 // t statistic
	DF float64 // Welch–Satterthwaite degrees of freedom
	P  float64 // two-sided p-value
}

// ErrTooFewSamples is returned when either sample has fewer than two
// observations.
var ErrTooFewSamples = errors.New("stats: need >= 2 samples per group")

// ErrZeroVariance is returned when both samples are constant: the
// t statistic is undefined (0/0 or ±∞), so the test cannot quantify
// evidence either way. Callers must treat the comparison as
// inconclusive, not significant.
var ErrZeroVariance = errors.New("stats: both samples have zero variance; t-test undefined")

// ErrNonFinite is returned when a sample contains NaN or ±Inf, which
// would silently poison every downstream moment.
var ErrNonFinite = errors.New("stats: sample contains NaN or Inf")

// Welch runs Welch's two-sample t-test on a and b and returns the
// two-sided p-value for the null hypothesis that the means are equal.
// Degenerate inputs (n < 2, zero variance in both samples, non-finite
// values) return a typed error rather than letting NaN/±Inf propagate
// into significance tables.
func Welch(a, b []float64) (WelchResult, error) {
	n1, n2 := float64(len(a)), float64(len(b))
	if len(a) < 2 || len(b) < 2 {
		return WelchResult{}, ErrTooFewSamples
	}
	for _, xs := range [][]float64{a, b} {
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return WelchResult{}, ErrNonFinite
			}
		}
	}
	m1, m2 := Mean(a), Mean(b)
	v1, v2 := Variance(a), Variance(b)
	se := v1/n1 + v2/n2
	if se == 0 {
		return WelchResult{}, ErrZeroVariance
	}
	t := (m1 - m2) / math.Sqrt(se)
	df := se * se / (v1*v1/(n1*n1*(n1-1)) + v2*v2/(n2*n2*(n2-1)))
	p := StudentTTwoSidedP(t, df)
	return WelchResult{T: t, DF: df, P: p}, nil
}

// Significant reports whether the two samples' means differ at the given
// alpha (the paper uses 0.01). Insufficient samples count as not
// significant.
func Significant(a, b []float64, alpha float64) bool {
	r, err := Welch(a, b)
	if err != nil {
		return false
	}
	return r.P < alpha
}

// StudentTTwoSidedP returns the two-sided p-value of |t| under a Student
// t distribution with df degrees of freedom:
//
//	p = I_{df/(df+t^2)}(df/2, 1/2)
//
// where I is the regularised incomplete beta function.
func StudentTTwoSidedP(t, df float64) float64 {
	if math.IsInf(t, 0) {
		return 0
	}
	if df <= 0 {
		return 1
	}
	x := df / (df + t*t)
	return RegIncBeta(df/2, 0.5, x)
}

// RegIncBeta computes the regularised incomplete beta function I_x(a, b)
// via the continued-fraction expansion (Numerical Recipes betacf).
func RegIncBeta(a, b, x float64) float64 {
	if x <= 0 {
		return 0
	}
	if x >= 1 {
		return 1
	}
	lbeta, _ := math.Lgamma(a + b)
	la, _ := math.Lgamma(a)
	lb, _ := math.Lgamma(b)
	front := math.Exp(lbeta - la - lb + a*math.Log(x) + b*math.Log(1-x))
	if x < (a+1)/(a+b+2) {
		return front * betacf(a, b, x) / a
	}
	return 1 - front*betacf(b, a, 1-x)/b
}

// betacf evaluates the continued fraction for the incomplete beta
// function by the modified Lentz method.
func betacf(a, b, x float64) float64 {
	const (
		maxIter = 300
		eps     = 3e-14
		fpmin   = 1e-300
	)
	qab, qap, qam := a+b, a+1, a-1
	c := 1.0
	d := 1 - qab*x/qap
	if math.Abs(d) < fpmin {
		d = fpmin
	}
	d = 1 / d
	h := d
	for m := 1; m <= maxIter; m++ {
		fm := float64(m)
		m2 := 2 * fm
		aa := fm * (b - fm) * x / ((qam + m2) * (a + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		h *= d * c
		aa = -(a + fm) * (qab + fm) * x / ((a + m2) * (qap + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			break
		}
	}
	return h
}

// PercentDiff returns the percent difference of b relative to a:
// positive when b < a (b "is better" for time-like metrics) following
// the paper's heatmap convention (QUIC faster => positive/red).
func PercentDiff(tcp, quic float64) float64 {
	if tcp == 0 {
		return 0
	}
	return (tcp - quic) / tcp * 100
}
