package stats_test

import (
	"fmt"

	"quiclab/internal/stats"
)

// Decide whether a QUIC-vs-TCP PLT difference is statistically
// significant the way the paper does (Welch's t-test, p < 0.01).
func ExampleWelch() {
	quicPLTs := []float64{0.48, 0.50, 0.47, 0.49, 0.51, 0.48, 0.50, 0.49, 0.47, 0.50}
	tcpPLTs := []float64{0.63, 0.65, 0.66, 0.64, 0.62, 0.66, 0.65, 0.64, 0.63, 0.65}
	r, _ := stats.Welch(quicPLTs, tcpPLTs)
	fmt.Printf("significant at p<0.01: %v\n", r.P < 0.01)
	fmt.Printf("QUIC is %.0f%% faster\n",
		stats.PercentDiff(stats.Mean(tcpPLTs), stats.Mean(quicPLTs)))
	// Output:
	// significant at p<0.01: true
	// QUIC is 24% faster
}
