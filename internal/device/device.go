// Package device models the client devices of the paper's testbed
// (§3.1): a desktop, a Nexus 6, and a MotoG. The mobile mechanism the
// paper identifies (Fig 12/13) is that QUIC processes packets in
// userspace, so a slow device drains its receive pipeline slowly; TCP's
// kernel path is far cheaper. Profiles therefore carry asymmetric
// per-packet processing costs plus the memory-constrained receive
// windows phones advertise.
package device

import (
	"time"

	"quiclab/internal/quic"
	"quiclab/internal/tcp"
)

// Profile describes one client device.
type Profile struct {
	Name string
	// QUICProcDelay is the userspace per-packet processing cost
	// (decrypt + demux + deliver) for QUIC.
	QUICProcDelay time.Duration
	// QUICStreamTouch is the extra per-packet cost per active stream
	// (userspace multiplexing bookkeeping). Under wide multiplexing it
	// backs up the receive pipeline, inflating QUIC's RTT samples and
	// triggering HyStart's early exit — the paper's many-small-objects
	// root cause (§5.2). TCP is unaffected: kernel acks precede
	// userspace HTTP/2 processing.
	QUICStreamTouch time.Duration
	// TCPProcDelay is the kernel per-segment cost for TCP.
	TCPProcDelay time.Duration
	// CryptoDelay is the one-time handshake crypto cost for QUIC's
	// userspace key agreement.
	CryptoDelay time.Duration
	// StreamRecvWindow / ConnRecvWindow are the QUIC flow-control
	// windows the device advertises (phones are memory-constrained).
	StreamRecvWindow uint64
	ConnRecvWindow   uint64
	// TCPRecvBuffer is the TCP receive buffer.
	TCPRecvBuffer int
}

// The paper's three client devices. Processing costs are calibrated so
// that the desktop never throttles, the Nexus 6 throttles mildly at
// 50 Mbps, and the MotoG (1.2 GHz, 1 GB) throttles hard — reproducing
// the Fig 12 ordering.
var (
	Desktop = Profile{
		Name:            "Desktop",
		QUICProcDelay:   5 * time.Microsecond,
		QUICStreamTouch: 6 * time.Microsecond,
		TCPProcDelay:    2 * time.Microsecond,
		CryptoDelay:     500 * time.Microsecond,
		// Desktop-class auto-tuned windows (package quic defaults).
		StreamRecvWindow: quic.DefaultStreamRecvWindow,
		ConnRecvWindow:   quic.DefaultConnRecvWindow,
		TCPRecvBuffer:    6 << 20,
	}
	Nexus6 = Profile{
		Name:             "Nexus6",
		QUICProcDelay:    230 * time.Microsecond, // ~47 Mbps userspace drain
		TCPProcDelay:     15 * time.Microsecond,
		CryptoDelay:      4 * time.Millisecond,
		StreamRecvWindow: 512 << 10,
		ConnRecvWindow:   768 << 10,
		TCPRecvBuffer:    2 << 20,
	}
	MotoG = Profile{
		Name:             "MotoG",
		QUICProcDelay:    280 * time.Microsecond, // ~38 Mbps userspace drain
		TCPProcDelay:     30 * time.Microsecond,
		CryptoDelay:      9 * time.Millisecond,
		StreamRecvWindow: 256 << 10,
		ConnRecvWindow:   384 << 10,
		TCPRecvBuffer:    1 << 20,
	}
)

// Profiles lists the built-in devices.
func Profiles() []Profile { return []Profile{Desktop, Nexus6, MotoG} }

// Lookup returns the named profile and whether it exists.
func Lookup(name string) (Profile, bool) {
	for _, p := range Profiles() {
		if p.Name == name {
			return p, true
		}
	}
	return Profile{}, false
}

// ByName returns the named profile (Desktop if unknown). Callers that
// need to distinguish unknown names should use Lookup.
func ByName(name string) Profile {
	if p, ok := Lookup(name); ok {
		return p
	}
	return Desktop
}

// ApplyQUIC overlays the device's constraints onto a QUIC client config.
func (p Profile) ApplyQUIC(cfg quic.Config) quic.Config {
	cfg.ProcDelay = p.QUICProcDelay
	cfg.StreamTouchDelay = p.QUICStreamTouch
	cfg.HandshakeCryptoDelay = p.CryptoDelay
	cfg.StreamRecvWindow = p.StreamRecvWindow
	cfg.ConnRecvWindow = p.ConnRecvWindow
	return cfg
}

// ApplyTCP overlays the device's constraints onto a TCP client config.
func (p Profile) ApplyTCP(cfg tcp.Config) tcp.Config {
	cfg.ProcDelay = p.TCPProcDelay
	cfg.RecvBuffer = p.TCPRecvBuffer
	return cfg
}

// MaxQUICDrainBps returns the device's userspace packet-processing
// ceiling in bits/sec at QUIC's packet size — useful for sanity checks
// and documentation.
func (p Profile) MaxQUICDrainBps() float64 {
	if p.QUICProcDelay <= 0 {
		return 1e12
	}
	return float64(quic.MaxPacketSize*8) / p.QUICProcDelay.Seconds()
}
