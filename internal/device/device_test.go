package device

import (
	"testing"

	"quiclab/internal/quic"
	"quiclab/internal/tcp"
)

func TestProfilesOrdering(t *testing.T) {
	// Desktop must drain faster than Nexus6, which must beat MotoG —
	// that ordering is what produces the Fig 12 gradient.
	if !(Desktop.MaxQUICDrainBps() > Nexus6.MaxQUICDrainBps() &&
		Nexus6.MaxQUICDrainBps() > MotoG.MaxQUICDrainBps()) {
		t.Fatal("drain-rate ordering broken")
	}
	// MotoG throttles hard at the paper's top mobile rate (50 Mbps);
	// the Nexus 6 throttles mildly (drain just below 50 Mbps); the
	// desktop never throttles.
	if MotoG.MaxQUICDrainBps() > 42e6 {
		t.Fatalf("MotoG drain %v must be well below 50 Mbps", MotoG.MaxQUICDrainBps())
	}
	if d := Nexus6.MaxQUICDrainBps(); d < 42e6 || d > 55e6 {
		t.Fatalf("Nexus6 drain %v should sit just below 50 Mbps", d)
	}
	if Desktop.MaxQUICDrainBps() < 1e9 {
		t.Fatal("desktop should not throttle")
	}
}

func TestTCPCheaperThanQUICOnSameDevice(t *testing.T) {
	for _, p := range Profiles() {
		if p.TCPProcDelay >= p.QUICProcDelay {
			t.Errorf("%s: kernel TCP path must be cheaper than userspace QUIC", p.Name)
		}
	}
}

func TestApplyQUIC(t *testing.T) {
	cfg := MotoG.ApplyQUIC(quic.Config{})
	if cfg.ProcDelay != MotoG.QUICProcDelay || cfg.ConnRecvWindow != MotoG.ConnRecvWindow {
		t.Fatalf("ApplyQUIC: %+v", cfg)
	}
	if cfg.HandshakeCryptoDelay != MotoG.CryptoDelay {
		t.Fatal("crypto delay not applied")
	}
}

func TestApplyTCP(t *testing.T) {
	cfg := Nexus6.ApplyTCP(tcp.Config{})
	if cfg.ProcDelay != Nexus6.TCPProcDelay || cfg.RecvBuffer != Nexus6.TCPRecvBuffer {
		t.Fatalf("ApplyTCP: %+v", cfg)
	}
}

func TestByName(t *testing.T) {
	if ByName("MotoG").Name != "MotoG" {
		t.Fatal("lookup failed")
	}
	if ByName("nope").Name != "Desktop" {
		t.Fatal("unknown should default to Desktop")
	}
}

func TestLookup(t *testing.T) {
	for _, p := range Profiles() {
		got, ok := Lookup(p.Name)
		if !ok || got.Name != p.Name {
			t.Fatalf("Lookup(%q) = %+v, %v", p.Name, got, ok)
		}
	}
	if _, ok := Lookup("nope"); ok {
		t.Fatal("unknown name should not resolve")
	}
}

func TestMotoGWindowBelowMACW(t *testing.T) {
	// The MotoG receive window must sit below the MACW (430 * 1350 B) so
	// that flow control — not cwnd — binds, putting the server into
	// ApplicationLimited most of the time (Fig 13's 58%).
	macw := uint64(430 * quic.MaxPacketSize)
	if MotoG.ConnRecvWindow >= macw {
		t.Errorf("MotoG conn window %d >= MACW bytes %d", MotoG.ConnRecvWindow, macw)
	}
}
