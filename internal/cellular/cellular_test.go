package cellular

import (
	"testing"
	"time"
)

func TestProfilesComplete(t *testing.T) {
	ps := Profiles()
	if len(ps) != 4 {
		t.Fatalf("want 4 profiles, got %d", len(ps))
	}
	for _, p := range ps {
		if p.ThroughputMbps <= 0 || p.RTT <= 0 {
			t.Errorf("%s: incomplete profile %+v", p.Name, p)
		}
	}
}

func TestLinkConfigDirections(t *testing.T) {
	cfg := Verizon3G.LinkConfig(true)
	if cfg.LossProb == 0 && Verizon3G.LossPct > 0 {
		t.Fatal("downlink should carry loss")
	}
	if cfg.ReorderProb <= 0 {
		t.Fatal("downlink should carry reordering")
	}
	up := Verizon3G.LinkConfig(false)
	if up.LossProb != 0 || up.ReorderProb != 0 {
		t.Fatal("uplink should be clean in this model")
	}
	if cfg.Delay != Verizon3G.RTT/2 {
		t.Fatal("one-way delay should be RTT/2")
	}
}

func TestProbeRecoversTable5(t *testing.T) {
	// The emulated networks, measured the paper's way, must reproduce
	// the Table 5 characteristics they were built from.
	for _, p := range Profiles() {
		dur := 30 * time.Second
		if p.LossPct > 0 && p.LossPct < 0.1 {
			dur = 240 * time.Second // enough packets to observe rare loss
		}
		m := Probe(p, 42, dur)
		if m.ThroughputMbps < 0.75*p.ThroughputMbps || m.ThroughputMbps > 1.15*p.ThroughputMbps {
			t.Errorf("%s: measured %.2f Mbps, want ~%.2f", p.Name, m.ThroughputMbps, p.ThroughputMbps)
		}
		// Unloaded RTT close to nominal (+ uplink jitter band).
		if m.RTT < p.RTT-5*time.Millisecond || m.RTT > p.RTT+p.RTTJitter+20*time.Millisecond {
			t.Errorf("%s: measured RTT %v, want ~%v", p.Name, m.RTT, p.RTT)
		}
		if p.ReorderPct > 0 && m.ReorderPct == 0 {
			t.Errorf("%s: no reordering measured, want ~%.2f%%", p.Name, p.ReorderPct)
		}
		// Reordering rate in the right ballpark (observed inversions vs
		// configured hold-back probability differ by a small factor).
		if p.ReorderPct > 0 && (m.ReorderPct < p.ReorderPct/4 || m.ReorderPct > p.ReorderPct*4) {
			t.Errorf("%s: reorder %.2f%%, want within 4x of %.2f%%", p.Name, m.ReorderPct, p.ReorderPct)
		}
		// Loss: only assert when enough packets flowed for the rate to be
		// statistically observable.
		expected := float64(dur/time.Second) * 2 * p.ThroughputMbps * 1e6 / 8 / 1350 * p.LossPct / 100
		if expected >= 5 && (m.LossPct < p.LossPct/5 || m.LossPct > p.LossPct*5) {
			t.Errorf("%s: loss %.3f%%, want ~%.3f%% (expected %f drops)", p.Name, m.LossPct, p.LossPct, expected)
		}
	}
}

func TestMeasurementString(t *testing.T) {
	m := Measurement{ThroughputMbps: 1.5, RTT: 60 * time.Millisecond}
	if m.String() == "" {
		t.Fatal("empty string")
	}
}
