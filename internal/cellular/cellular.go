// Package cellular provides the operational cellular-network profiles
// from the paper's Table 5 (Verizon and Sprint, 3G and LTE) as netem
// configurations, plus a probe that measures a profile's emulated
// characteristics the way the paper measured the real networks —
// regenerating Table 5 from the emulation itself.
package cellular

import (
	"fmt"
	"time"

	"quiclab/internal/netem"
	"quiclab/internal/sim"
	"quiclab/internal/stats"
)

// Profile is one operational network from Table 5.
type Profile struct {
	Name           string
	ThroughputMbps float64       // measured average downlink throughput
	RTT            time.Duration // average RTT
	RTTJitter      time.Duration // RTT standard deviation
	ReorderPct     float64       // packet reordering rate (%)
	LossPct        float64       // packet loss rate (%)
}

// The paper's Table 5 rows.
var (
	Verizon3G  = Profile{Name: "Verizon-3G", ThroughputMbps: 0.17, RTT: 109 * time.Millisecond, RTTJitter: 20 * time.Millisecond, ReorderPct: 1.73, LossPct: 0.05}
	VerizonLTE = Profile{Name: "Verizon-LTE", ThroughputMbps: 4.0, RTT: 61 * time.Millisecond, RTTJitter: 9 * time.Millisecond, ReorderPct: 0.25, LossPct: 0}
	Sprint3G   = Profile{Name: "Sprint-3G", ThroughputMbps: 0.31, RTT: 70 * time.Millisecond, RTTJitter: 39 * time.Millisecond, ReorderPct: 1.38, LossPct: 0.02}
	SprintLTE  = Profile{Name: "Sprint-LTE", ThroughputMbps: 2.4, RTT: 55 * time.Millisecond, RTTJitter: 11 * time.Millisecond, ReorderPct: 0.13, LossPct: 0.02}
)

// Profiles lists the Table 5 networks.
func Profiles() []Profile { return []Profile{Verizon3G, VerizonLTE, Sprint3G, SprintLTE} }

// LinkConfig converts the profile into a one-way netem configuration.
// The downlink carries the loss and the explicit reordering rate (so the
// data path reorders at exactly the Table 5 rate); the RTT jitter is
// emulated on the uplink, where it varies ack timing without adding
// extra data reordering on top of the calibrated rate.
func (p Profile) LinkConfig(downlink bool) netem.Config {
	cfg := netem.Config{
		RateBps: int64(p.ThroughputMbps * 1e6),
		Delay:   p.RTT / 2,
	}
	if downlink {
		cfg.LossProb = p.LossPct / 100
		cfg.ReorderProb = p.ReorderPct / 100
	} else {
		cfg.Jitter = p.RTTJitter
	}
	return cfg
}

// Measurement is what the probe observed — the regenerated Table 5 row.
type Measurement struct {
	ThroughputMbps float64
	RTT            time.Duration
	RTTStd         time.Duration
	ReorderPct     float64
	LossPct        float64
}

func (m Measurement) String() string {
	return fmt.Sprintf("thrpt=%.2f Mbps rtt=%v (±%v) reorder=%.2f%% loss=%.2f%%",
		m.ThroughputMbps, m.RTT.Round(time.Millisecond), m.RTTStd.Round(time.Millisecond), m.ReorderPct, m.LossPct)
}

// Probe measures a profile by driving its emulated links directly: a
// saturating bulk stream for throughput/reordering/loss and periodic
// small probes for RTT, mirroring how the paper characterised the real
// networks.
func Probe(p Profile, seed int64, duration time.Duration) Measurement {
	s := sim.New(seed)
	down := netem.NewLink(s, p.LinkConfig(true))
	up := netem.NewLink(s, p.LinkConfig(false))

	const pktSize = 1350
	var (
		received   int
		lastSeq    = -1
		reordered  int
		bytes      int64
		firstAt    time.Duration = -1
		lastAt     time.Duration
		rttSamples []float64
	)
	down.Out = func(pkt *netem.Packet) {
		seq := pkt.Payload.(int)
		received++
		bytes += int64(pkt.Size)
		if firstAt < 0 {
			firstAt = s.Now()
		}
		lastAt = s.Now()
		if seq < lastSeq {
			reordered++
		} else {
			lastSeq = seq
		}
	}
	// Phase 1: RTT probes on the unloaded network (tiny packet up, echo
	// down), as the paper's ping-style characterisation did.
	const probePhase = 5 * time.Second
	up.Out = func(pkt *netem.Packet) {
		down.Send(&netem.Packet{Size: 64, Payload: pkt.Payload.(int)})
	}
	probeSent := map[int]time.Duration{}
	probeSeq := 1 << 30
	origDownOut := down.Out
	down.Out = func(pkt *netem.Packet) {
		seq := pkt.Payload.(int)
		if seq >= 1<<30 {
			if t0, ok := probeSent[seq]; ok {
				rttSamples = append(rttSamples, float64(s.Now()-t0)/float64(time.Millisecond))
				delete(probeSent, seq)
			}
			return
		}
		origDownOut(pkt)
	}
	var ping func()
	ping = func() {
		if s.Now() >= probePhase {
			return
		}
		probeSent[probeSeq] = s.Now()
		up.Send(&netem.Packet{Size: 64, Payload: probeSeq})
		probeSeq++
		s.Schedule(100*time.Millisecond, ping)
	}
	s.Schedule(0, ping)

	// Phase 2: saturate the downlink at 2x its rate for throughput, loss
	// and reordering measurement.
	interval := time.Duration(float64(pktSize*8)/(2*p.ThroughputMbps*1e6)*float64(time.Second)) + time.Microsecond
	sent := 0
	var pump func()
	pump = func() {
		if s.Now() >= probePhase+duration {
			return
		}
		down.Send(&netem.Packet{Size: pktSize, Payload: sent})
		sent++
		s.Schedule(interval, pump)
	}
	s.ScheduleAt(probePhase, pump)

	s.Run()

	m := Measurement{}
	if lastAt > firstAt && firstAt >= 0 {
		m.ThroughputMbps = float64(bytes*8) / (lastAt - firstAt).Seconds() / 1e6
	}
	if received > 0 {
		m.ReorderPct = 100 * float64(reordered) / float64(received)
	}
	dropped := down.Stats().DroppedLoss
	if sent > 0 {
		m.LossPct = 100 * float64(dropped) / float64(sent+probeSeq-1<<30)
	}
	if len(rttSamples) > 0 {
		m.RTT = time.Duration(stats.Mean(rttSamples) * float64(time.Millisecond))
		m.RTTStd = time.Duration(stats.StdDev(rttSamples) * float64(time.Millisecond))
	}
	return m
}
